"""Figure 9 regeneration: accuracy and convergence vs compression ratio.

Produces the paper's three panels as rows (energy, error vs ground state,
iterations) per molecule/bond length/configuration, plus the Section VI-C
aggregate speedups.  Shapes to check against the paper:

* more kept parameters -> lower error, slower convergence;
* "50%" error around the 0.05% level;
* importance-selected 50% beats random 50%;
* iteration speedups decreasing from 10% toward 90%.
"""

from conftest import full_scope

from repro.bench import convergence_speedups, fig9_data, format_table
from repro.bench.fig9 import summarize


def _molecules() -> list[str]:
    # H2 is omitted by the paper ("only three parameters"); we include it
    # in the run but report it separately.
    if full_scope():
        return ["LiH", "NaH", "HF", "BeH2", "H2O"]
    return ["LiH", "NaH"]


def test_fig9_accuracy_and_convergence(benchmark):
    molecules = _molecules()
    points = benchmark.pedantic(
        fig9_data,
        args=(molecules,),
        kwargs={
            "points_per_molecule": 3 if full_scope() else 2,
            "random_repeats": 5 if full_scope() else 3,
        },
        iterations=1,
        rounds=1,
    )
    rows = [
        [
            p.molecule,
            p.bond_length,
            p.configuration,
            p.num_parameters,
            p.energy,
            p.error,
            p.iterations,
        ]
        for p in points
    ]
    print()
    print(
        format_table(
            ["molecule", "bond", "config", "#params", "E (Ha)", "E - E0 (Ha)", "iters"],
            rows,
            title="Figure 9 raw points",
        )
    )
    speedups = convergence_speedups(points)
    print()
    print(
        format_table(
            ["config", "iteration speedup vs full"],
            [[k, v] for k, v in speedups.items()],
            title="Section VI-C convergence speedups (paper: 14.3/4.8/2.5/1.6/1.1x)",
        )
    )

    summaries = {(s.molecule, s.configuration): s for s in summarize(points)}
    import numpy as np

    for molecule in molecules:
        # Errors shrink (weakly) as more parameters are kept.
        e10 = summaries[(molecule, "10%")].mean_error
        e90 = summaries[(molecule, "90%")].mean_error
        assert e90 <= e10 + 1e-9, molecule
        # Full ansatz is essentially exact.
        assert summaries[(molecule, "full")].mean_error < 1e-4, molecule
        # 50% compression stays within ~0.1% relative error (paper: ~0.05%).
        assert summaries[(molecule, "50%")].mean_relative_error < 2e-3, molecule
    # The paper's effectiveness claim, in aggregate across molecules:
    # importance-selected 30% reaches the accuracy band of random 50%
    # (Section VI-C), and importance 50% is competitive with random 50%.
    mean_30 = np.mean([summaries[(m, "30%")].mean_error for m in molecules])
    mean_50 = np.mean([summaries[(m, "50%")].mean_error for m in molecules])
    mean_rand = np.mean([summaries[(m, "rand50%")].mean_error for m in molecules])
    assert mean_30 <= 4.0 * mean_rand + 1e-4
    assert mean_50 <= 2.0 * mean_rand + 1e-4
    # Convergence speedup decreases with ratio, and strong compression is
    # clearly faster than the full ansatz (the 90% point sits near 1.0 in
    # the paper as well: 1.1x).
    assert speedups["10%"] >= speedups["90%"]
    assert speedups["10%"] >= 1.2
    assert speedups["90%"] >= 0.8
