"""Table II regeneration: mapping overhead of the three compilation flows.

Columns per molecule x ratio: original CNOTs (chain synthesis of the
compressed ansatz), Merge-to-Root overhead on XTree17Q, SABRE overhead on
XTree17Q, SABRE overhead on Grid17Q.  Shape targets:

* MtR overhead is a tiny fraction of the original count (paper: ~1.4%
  on average) and of SABRE's overhead (~1%);
* SABRE on the sparse X-Tree is the worst flow (~177% of original);
* SABRE improves on the denser grid but still loses to MtR.
"""

import numpy as np
from conftest import full_scope

from repro.bench import PAPER_RATIOS, format_table
from repro.bench.table2 import TABLE2_PAPER, table2_rows


def _molecules() -> list[str]:
    if full_scope():
        return list(TABLE2_PAPER)
    return ["H2", "LiH", "NaH", "HF"]


def test_table2_mapping_overhead(benchmark):
    molecules = _molecules()
    rows = benchmark.pedantic(
        table2_rows, args=(molecules, PAPER_RATIOS), iterations=1, rounds=1
    )
    printable = []
    for row in rows:
        paper = TABLE2_PAPER[row.molecule][row.ratio]
        printable.append(
            [
                row.molecule,
                f"{row.ratio:.0%}",
                f"{row.original_cnots}/{paper[0]}",
                f"{row.mtr_xtree_overhead}/{paper[1]}",
                f"{row.sabre_xtree_overhead}/{paper[2]}",
                f"{row.sabre_grid_overhead}/{paper[3]}",
            ]
        )
    print()
    print(
        format_table(
            ["molecule", "ratio", "original", "MtR@XTree", "SABRE@XTree", "SABRE@Grid"],
            printable,
            title="Table II, ours/paper (CNOT overheads)",
        )
    )

    mtr_ratios = []
    mtr_vs_sabre = []
    for row in rows:
        # MtR on the tree never exceeds a small fraction of the circuit.
        if row.original_cnots:
            mtr_ratios.append(row.mtr_xtree_overhead / row.original_cnots)
        if row.sabre_xtree_overhead:
            mtr_vs_sabre.append(row.mtr_xtree_overhead / row.sabre_xtree_overhead)
        # SABRE on the sparse tree is never better than MtR.
        assert row.mtr_xtree_overhead <= row.sabre_xtree_overhead
    print(f"mean MtR overhead ratio: {np.mean(mtr_ratios):.2%} (paper ~1.4%)")
    print(f"mean MtR/SABRE@XTree:    {np.mean(mtr_vs_sabre):.2%} (paper ~1%)")
    assert np.mean(mtr_ratios) < 0.10
    assert np.mean(mtr_vs_sabre) < 0.15


def test_table2_dag_columns(benchmark):
    """The DAG-IR columns of Table II: ASAP-scheduled depth and the
    adjacency-vs-commutation cancellation totals per molecule.

    Shape targets: MtR's scheduled depth stays below SABRE-on-XTree's
    (fewer SWAP serializations on the critical path), and the
    commutation-aware peephole never removes fewer CNOTs than the
    adjacency pass -- strictly more wherever MtR emits sibling waves.
    """
    molecules = ["H2", "LiH", "NaH", "HF"]
    rows = benchmark.pedantic(
        table2_rows,
        args=(molecules, (0.5,)),
        kwargs={"include_grid": False, "dag": True, "commute": True},
        iterations=1,
        rounds=1,
    )
    printable = []
    for row in rows:
        printable.append(
            [
                row.molecule,
                f"{row.mtr_scheduled_depth}",
                f"{row.sabre_xtree_scheduled_depth}",
                f"{row.mtr_duration_ns / 1e3:.1f}",
                f"{row.mtr_cnots_adjacency}",
                f"{row.mtr_cnots_commute}",
            ]
        )
    print()
    print(
        format_table(
            [
                "molecule",
                "MtR depth",
                "SABRE depth",
                "MtR us",
                "MtR cx (adj)",
                "MtR cx (comm)",
            ],
            printable,
            title="Table II DAG columns (scheduled depth, cancellation)",
        )
    )
    for row in rows:
        assert row.mtr_scheduled_depth <= row.sabre_xtree_scheduled_depth, row.molecule
        assert row.mtr_cnots_commute <= row.mtr_cnots_adjacency, row.molecule
    assert any(r.mtr_cnots_commute < r.mtr_cnots_adjacency for r in rows)


def test_locality_jump_70_to_90(benchmark):
    """Section VI-F: MtR overhead grows faster from 70% -> 90% than from
    50% -> 70% (late, unimportant strings have poor locality)."""
    molecules = ["LiH", "NaH", "HF"] if not full_scope() else list(TABLE2_PAPER)
    rows = benchmark.pedantic(
        table2_rows,
        args=(molecules, (0.5, 0.7, 0.9)),
        kwargs={"include_grid": False},
        iterations=1,
        rounds=1,
    )
    by_molecule: dict[str, dict[float, int]] = {}
    for row in rows:
        by_molecule.setdefault(row.molecule, {})[row.ratio] = row.mtr_xtree_overhead
    jumps_low, jumps_high = [], []
    for molecule, by_ratio in by_molecule.items():
        jumps_low.append(by_ratio[0.7] - by_ratio[0.5])
        jumps_high.append(by_ratio[0.9] - by_ratio[0.7])
    print(f"\nmean overhead increment 50->70%: {np.mean(jumps_low):.1f} CNOTs")
    print(f"mean overhead increment 70->90%: {np.mean(jumps_high):.1f} CNOTs")
    assert np.mean(jumps_high) >= np.mean(jumps_low)
