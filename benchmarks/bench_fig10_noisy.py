"""Figure 10 regeneration: noisy case studies (LiH, NaH).

Depolarizing CNOT noise at the paper's 1e-4 rate; exact density-matrix
propagation.  Shapes: the compressed VQE still traces the molecular
energy landscape, and the noise floor makes high ratios less beneficial
than in the noise-free case (the pruning/noise trade-off of Section VI-D).
"""

from conftest import full_scope

from repro.bench import fig10_data, format_table
from repro.bench.fig10 import error_by_ratio


def test_fig10_noisy_case_studies(benchmark):
    molecules = ["LiH", "NaH"] if full_scope() else ["LiH"]
    points = benchmark.pedantic(
        fig10_data,
        kwargs={
            "molecules": molecules,
            "points_per_molecule": 2,
            "max_iterations": 40 if full_scope() else 25,
        },
        iterations=1,
        rounds=1,
    )
    rows = [
        [p.molecule, p.bond_length, p.configuration, p.energy, p.error, p.iterations]
        for p in points
    ]
    print()
    print(
        format_table(
            ["molecule", "bond", "config", "E (Ha)", "E - E0 (Ha)", "iters"],
            rows,
            title="Figure 10 noisy VQE (CNOT depolarizing p = 1e-4)",
        )
    )
    table = error_by_ratio(points)
    print()
    for molecule, errors in table.items():
        print(f"{molecule}: mean |error| by ratio: {errors}")

    for molecule in molecules:
        errors = table[molecule]
        # The noisy landscape is still correct to within a few mHa at the
        # best ratio (paper Figure 10's scale).
        assert min(errors.values()) < 5e-3, molecule
        # Noise is visible: errors exceed the noise-free 90% level.
        assert max(errors.values()) > 1e-6, molecule
