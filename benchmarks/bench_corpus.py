"""Corpus-wide compiler benchmark -> ``BENCH_corpus.json``.

Compiles every committed corpus circuit (``benchmarks/corpus/``) with
both flows (Merge-to-Root spanning-tree mode and SABRE) on an exact-fit
XTree and a near-square grid, recording routed CNOTs, scheduled depth,
commutation-aware cancellation wins and compile time, plus the
compile-cache cold/warm hit rates through the QASM pipeline path.
Regenerate the artifact without pytest via::

    PYTHONPATH=src python benchmarks/bench_corpus.py
"""

import json
from pathlib import Path

from repro.bench.corpus import CORPUS_COMPILERS, run_corpus_benchmark

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"
BENCH_CORPUS_PATH = Path(__file__).resolve().parent.parent / "BENCH_corpus.json"


def write_bench_corpus_artifact(
    payload: dict, path: Path = BENCH_CORPUS_PATH
) -> Path:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_corpus_benchmark_and_artifact():
    """ISSUE-8 acceptance: >=24 circuits x 2 compilers x 2 devices rows.

    Every row must have strictly positive routed CNOTs and depth, the
    co-designed flow must cover every circuit (spanning-tree mode means
    no device is out of reach), and the warm compile-cache pass over the
    corpus must hit on every lookup.  Writes ``BENCH_corpus.json`` at
    the repo root for the CI workflow to upload.
    """
    payload = run_corpus_benchmark(CORPUS_DIR)
    path = write_bench_corpus_artifact(payload)
    print()
    print(f"wrote {path} ({len(payload['rows'])} rows)")

    assert payload["num_circuits"] >= 24
    assert len(payload["rows"]) == payload["num_circuits"] * len(CORPUS_COMPILERS) * 2
    for row in payload["rows"]:
        assert row["routed_cnots"] >= row["logical_cnots"] > 0, row["circuit"]
        assert row["scheduled_depth"] > 0, row["circuit"]
        assert row["cancelled_cnots_commute"] <= row["cancelled_cnots_adjacent"]
        assert row["compile_ms"] > 0.0
    compilers = {row["compiler"] for row in payload["rows"]}
    assert compilers == set(CORPUS_COMPILERS)
    assert payload["cache"]["warm_hit_rate"] == 1.0


if __name__ == "__main__":
    artifact = write_bench_corpus_artifact(run_corpus_benchmark(CORPUS_DIR))
    summary = json.loads(artifact.read_text())
    print(f"wrote {artifact}: {summary['num_circuits']} circuits, "
          f"{len(summary['rows'])} rows, "
          f"warm hit rate {summary['cache']['warm_hit_rate']:.2f}")
