"""Shared benchmark configuration.

``REPRO_FULL=1`` widens every benchmark to the paper's full scope (all
nine molecules, all ratios, more Monte-Carlo trials).  The default scope
is chosen to finish in minutes on a laptop while exercising every code
path and reproducing every qualitative shape.
"""

import os

import pytest


def full_scope() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def scope_molecules() -> list[str]:
    """Molecules used by the expensive sweeps."""
    if full_scope():
        return ["H2", "LiH", "NaH", "HF", "BeH2", "H2O", "BH3", "NH3", "CH4"]
    return ["H2", "LiH", "NaH"]


@pytest.fixture(scope="session")
def scope_trials() -> int:
    return 20000 if full_scope() else 2000
