"""Micro-benchmarks of the performance-critical primitives.

These are classic pytest-benchmark timings (many rounds) for the kernels
the experiment harness leans on: Pauli algebra, statevector evolution,
grouped expectation, Merge-to-Root compilation and SABRE routing --
plus the simulation-engine comparison (legacy vs. in-place vs. batched
vs. fused, adjoint vs. parameter-shift gradients) that writes the
``BENCH_sim.json`` artifact -- including the gate-fusion vs. gate-level
baseline row, the compile-cache cold-vs-warm row, and the per-molecule
fusion exactness table -- the compiler-optimization comparison (adjacency-only vs.
commutation-aware cancellation, ASAP-scheduled depth) that writes
``BENCH_compiler.json``, and the noisy-backend comparison (exact density
matrix vs. stochastic Pauli trajectories, including the first noisy
14-qubit BH3 point) that writes ``BENCH_noise.json``.  Regenerate the
artifacts without pytest via::

    PYTHONPATH=src python benchmarks/bench_primitives.py
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.compiler import (
    MergeToRootCompiler,
    SabreRouter,
    cancel_gates,
    schedule_report,
    synthesize_program_chain,
)
from repro.core import compress_ansatz
from repro.hardware import xtree
from repro.pauli import PauliString
from repro.sim import ExpectationEngine, basis_state
from repro.sim.pauli_evolution import evolve_pauli_sequence
from repro.vqe import AdjointGradient, ParameterShiftGradient, sweep_energies

BENCH_SIM_PATH = Path(__file__).resolve().parent.parent / "BENCH_sim.json"
BENCH_COMPILER_PATH = Path(__file__).resolve().parent.parent / "BENCH_compiler.json"
BENCH_NOISE_PATH = Path(__file__).resolve().parent.parent / "BENCH_noise.json"

#: Every molecule of the paper's Table II.
TABLE2_MOLECULES = ("H2", "LiH", "NaH", "HF", "BeH2", "H2O", "BH3", "NH3", "CH4")


def test_pauli_compose_speed(benchmark):
    a = PauliString.from_label("XIYZXZIYXIYZXZIY")
    b = PauliString.from_label("ZZXYIIXYZZXYIIXY")
    benchmark(a.compose, b)


def test_ansatz_evolution_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    program = build_uccsd_program(problem).program
    terms = program.bound_terms(np.full(program.num_parameters, 0.05))
    state = basis_state(program.num_qubits, problem.hartree_fock_state_index())
    benchmark(evolve_pauli_sequence, terms, state)


def test_expectation_engine_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    engine = ExpectationEngine(problem.hamiltonian)
    state = basis_state(problem.num_qubits, problem.hartree_fock_state_index())
    benchmark(engine.value, state)


def test_merge_to_root_compile_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.5).program
    compiler = MergeToRootCompiler(xtree(17))
    benchmark(compiler.compile, compressed)


def test_sabre_routing_speed(benchmark):
    problem = build_molecule_hamiltonian("NaH")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.5).program
    chain = synthesize_program_chain(compressed, [0.0] * compressed.num_parameters)
    router = SabreRouter(xtree(17))
    benchmark.pedantic(router.run, args=(chain,), iterations=1, rounds=3)


# ----------------------------------------------------------------------
# Simulation-engine comparison -> BENCH_sim.json
# ----------------------------------------------------------------------
def _best_of(repeats: int, fn) -> float:
    """Best wall-clock of ``repeats`` runs (cold-cache noise suppressor)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def collect_sim_engine_timings(
    molecule: str = "H2O", batch_size: int = 24, repeats: int = 3
) -> dict:
    """Time the paper-table inner loop under each simulation engine.

    The workload is the ISSUE-3 acceptance target: a UCCSD energy sweep
    over ``batch_size`` parameter sets of the 12-qubit ``molecule``
    (H2O), evaluated by the legacy out-of-place engine (one point at a
    time), the in-place engine, and the batched ``(K, 2**n)`` engine.
    Also times one full gradient by parameter shift vs. adjoint mode.
    """
    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    rng = np.random.default_rng(5)
    parameter_sets = rng.normal(0.0, 0.1, (batch_size, program.num_parameters))

    seconds = {
        engine: _best_of(
            repeats,
            lambda engine=engine: sweep_energies(
                program, problem.hamiltonian, parameter_sets, engine=engine
            ),
        )
        for engine in ("legacy", "inplace", "batched", "fused")
    }
    # Cross-engine agreement guard: a fast-but-wrong engine must not
    # produce a plausible-looking artifact.
    reference = sweep_energies(
        program, problem.hamiltonian, parameter_sets, engine="legacy"
    )
    for engine in ("inplace", "batched", "fused"):
        candidate = sweep_energies(
            program, problem.hamiltonian, parameter_sets, engine=engine
        )
        np.testing.assert_allclose(candidate, reference, atol=1e-10)

    theta = parameter_sets[0]
    adjoint = AdjointGradient(program, problem.hamiltonian)
    shift = ParameterShiftGradient(program, problem.hamiltonian)
    adjoint_seconds = _best_of(1, lambda: adjoint.gradient(theta))
    shift_seconds = _best_of(1, lambda: shift.gradient(theta))

    return {
        "workload": (
            f"{molecule} UCCSD energy sweep, {batch_size} parameter sets"
        ),
        "molecule": molecule,
        "num_qubits": program.num_qubits,
        "num_parameters": program.num_parameters,
        "num_pauli_strings": len(program.terms),
        "batch_size": batch_size,
        "sweep_seconds": {k: round(v, 6) for k, v in seconds.items()},
        "speedup_inplace_vs_legacy": round(seconds["legacy"] / seconds["inplace"], 2),
        "speedup_batched_vs_legacy": round(seconds["legacy"] / seconds["batched"], 2),
        "note": (
            "legacy/inplace/batched apply exp(i*theta*P) at the Pauli level; "
            "fused is the gate-level fast path (dense-block circuit kernels) "
            "-- compare it against the gate-level baseline in the 'fusion' "
            "section, not against the Pauli engines"
        ),
        "gradient": {
            "parameter_shift_seconds": round(shift_seconds, 6),
            "adjoint_seconds": round(adjoint_seconds, 6),
            "speedup_adjoint_vs_parameter_shift": round(
                shift_seconds / adjoint_seconds, 2
            ),
        },
    }


def write_bench_sim_artifact(timings: dict, path: Path = BENCH_SIM_PATH) -> Path:
    path.write_text(json.dumps(timings, indent=2, sort_keys=True) + "\n")
    return path


def test_sim_engine_speedup_and_artifact():
    """ISSUE-3 acceptance: >=3x batched-vs-legacy on the 12-qubit sweep.

    Plain wall-clock timing (not pytest-benchmark) because the artifact
    records one comparable number per engine; writes ``BENCH_sim.json``
    at the repo root for the CI workflow to upload.

    ``BENCH_SIM_MIN_SPEEDUP`` relaxes the gate where wall-clock ratios
    are noisy (shared CI runners set 1.5 -- enough to catch a real
    engine regression without flaking on scheduler jitter); the local
    default stays at the strict 3.0 acceptance bar.
    """
    import os

    minimum = float(os.environ.get("BENCH_SIM_MIN_SPEEDUP", "3.0"))
    timings = collect_sim_engine_timings()
    path = write_bench_sim_artifact(timings)
    print()
    print(json.dumps(timings, indent=2, sort_keys=True))
    print(f"wrote {path}")
    assert timings["num_qubits"] == 12
    assert timings["speedup_batched_vs_legacy"] >= minimum
    assert timings["gradient"]["speedup_adjoint_vs_parameter_shift"] > 1.0


# ----------------------------------------------------------------------
# Gate fusion + compile cache -> merged into BENCH_sim.json
# ----------------------------------------------------------------------
def _gate_level_sweep(program, hamiltonian, parameter_sets) -> np.ndarray:
    """The unfused gate-level sweep: per-row synthesis, gate-by-gate apply.

    This is what a circuit simulator without fusion must do for a
    parameter sweep -- every row carries its own RZ angles, so the chain
    is re-synthesized and walked gate by gate for each parameter set.
    """
    from repro.sim.statevector import apply_circuit

    engine = ExpectationEngine(hamiltonian)
    energies = np.zeros(len(parameter_sets))
    for k, theta in enumerate(np.asarray(parameter_sets, dtype=float)):
        chain = synthesize_program_chain(program, theta)
        energies[k] = engine.value(apply_circuit(chain))
    return energies


def collect_fusion_cache_timings(
    molecule: str = "H2O",
    batch_size: int = 24,
    ratio: float = 0.3,
    repeats: int = 2,
    exact_molecules: tuple[str, ...] = TABLE2_MOLECULES,
) -> dict:
    """Gate-fusion and compile-cache timings (ISSUE-6).

    Three rows merged into ``BENCH_sim.json``:

    * ``fusion`` -- the ratio-compressed 12-qubit H2O sweep under the
      unfused gate-level baseline vs. the ``"fused"`` engine (one chain
      template, one cached fusion plan, per-row ``(K, 4, 4)`` batched
      GEMMs).  The fused run clears the compile cache first, so the
      speedup includes planning, not just replay.
    * ``compile_cache`` -- one co-optimization ``Pipeline`` run cold
      (empty cache) vs. rerun warm, with the cache counters split per
      phase (``cold_hit_rate`` vs. ``warm_hit_rate``) next to the
      aggregate totals.
    * ``fusion_exact_molecules`` -- max statevector deviation of the
      fused engine against the Pauli-evolution reference on every
      Table II molecule (unitary-exactness evidence).
    """
    from repro.compiler.fusion import build_fusion_plan, fuse_circuit
    from repro.core import Pipeline, PipelineConfig, clear_compile_cache, compile_cache
    from repro.vqe.energy import StatevectorEnergy

    problem = build_molecule_hamiltonian(molecule)
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, ratio).program
    rng = np.random.default_rng(5)
    parameter_sets = rng.normal(0.0, 0.1, (batch_size, compressed.num_parameters))

    gate_seconds = _best_of(
        repeats,
        lambda: _gate_level_sweep(compressed, problem.hamiltonian, parameter_sets),
    )

    def fused_sweep():
        clear_compile_cache()  # cold: the speedup must pay for planning
        return sweep_energies(
            compressed, problem.hamiltonian, parameter_sets, engine="fused"
        )

    fused_seconds = _best_of(repeats, fused_sweep)
    np.testing.assert_allclose(
        fused_sweep(),
        _gate_level_sweep(compressed, problem.hamiltonian, parameter_sets),
        atol=1e-8,
    )
    chain = synthesize_program_chain(compressed, [0.0] * compressed.num_parameters)
    plan = build_fusion_plan(chain, "2q")
    fused_program = fuse_circuit(chain, cache=False)

    clear_compile_cache()
    config = PipelineConfig(molecule=molecule, ratio=ratio)
    cold_seconds = _best_of(1, lambda: Pipeline(config).run())
    cold_stats = compile_cache().stats.to_dict()
    warm_seconds = _best_of(1, lambda: Pipeline(config).run())
    cache_stats = compile_cache().stats.to_dict()
    # Split the counters per phase: totals conflate the cold run's
    # guaranteed misses with the warm rerun's hits, so the aggregate
    # hit_rate under-reports how well the warm path actually caches.
    warm_hits = cache_stats["hits"] - cold_stats["hits"]
    warm_misses = cache_stats["misses"] - cold_stats["misses"]
    warm_lookups = warm_hits + warm_misses
    cache_stats["cold_hit_rate"] = cold_stats["hit_rate"]
    cache_stats["warm_hit_rate"] = (
        round(warm_hits / warm_lookups, 4) if warm_lookups else 0.0
    )

    exactness = {}
    for name in exact_molecules:
        exact_problem = build_molecule_hamiltonian(name)
        exact_program = compress_ansatz(
            build_uccsd_program(exact_problem).program,
            exact_problem.hamiltonian,
            0.15,
        ).program
        theta = np.random.default_rng(7).normal(
            0.0, 0.1, exact_program.num_parameters
        )
        reference = StatevectorEnergy(
            exact_program, exact_problem.hamiltonian, engine="inplace"
        )
        fused = StatevectorEnergy(
            exact_program, exact_problem.hamiltonian, engine="fused"
        )
        deviation = float(
            np.max(np.abs(fused.state(theta) - reference.state(theta)))
        )
        exactness[name] = {
            "num_qubits": exact_program.num_qubits,
            "max_state_deviation": deviation,
            "exact_to_1e-10": bool(deviation < 1e-10),
        }

    return {
        "fusion": {
            "workload": (
                f"{molecule} ratio-{ratio} UCCSD gate-level sweep, "
                f"{batch_size} parameter sets"
            ),
            "num_qubits": compressed.num_qubits,
            "num_parameters": compressed.num_parameters,
            "source_gates": len(chain.gates),
            "fused_ops": fused_program.num_ops,
            "fused_dense_blocks": plan.num_dense,
            "gate_batched_seconds": round(gate_seconds, 6),
            "fused_seconds": round(fused_seconds, 6),
            "speedup_fused_vs_gate_batched": round(gate_seconds / fused_seconds, 2),
        },
        "compile_cache": {
            "workload": (
                f"Pipeline({molecule}, ratio={ratio}) cold run vs. warm rerun"
            ),
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup_warm_vs_cold": round(cold_seconds / warm_seconds, 2),
            **cache_stats,
        },
        "fusion_exact_molecules": exactness,
    }


def test_fusion_cache_speedups_and_artifact():
    """ISSUE-6 acceptance: fused >=1.3x over the gate-level batched
    baseline on the 12-qubit H2O sweep, warm pipeline rerun >=5x over
    cold, and fusion unitary-exact on every Table II molecule; the rows
    are merged into ``BENCH_sim.json``.

    ``BENCH_FUSED_MIN_SPEEDUP`` / ``BENCH_CACHE_MIN_SPEEDUP`` relax the
    wall-clock gates on shared CI runners; ``BENCH_FUSION_MOLECULES``
    (comma-separated) restricts the exactness sweep where minutes matter.
    """
    import os

    fused_minimum = float(os.environ.get("BENCH_FUSED_MIN_SPEEDUP", "1.3"))
    cache_minimum = float(os.environ.get("BENCH_CACHE_MIN_SPEEDUP", "5.0"))
    override = os.environ.get("BENCH_FUSION_MOLECULES")
    molecules = tuple(override.split(",")) if override else TABLE2_MOLECULES
    rows = collect_fusion_cache_timings(exact_molecules=molecules)
    merged = json.loads(BENCH_SIM_PATH.read_text()) if BENCH_SIM_PATH.exists() else {}
    merged.update(rows)
    path = write_bench_sim_artifact(merged)
    print()
    print(json.dumps(rows, indent=2, sort_keys=True))
    print(f"wrote {path}")
    assert rows["fusion"]["num_qubits"] == 12
    assert rows["fusion"]["speedup_fused_vs_gate_batched"] >= fused_minimum
    assert rows["compile_cache"]["speedup_warm_vs_cold"] >= cache_minimum
    assert rows["compile_cache"]["hits"] > 0
    assert (
        rows["compile_cache"]["warm_hit_rate"]
        > rows["compile_cache"]["cold_hit_rate"]
    )
    for name, row in rows["fusion_exact_molecules"].items():
        assert row["exact_to_1e-10"], (name, row["max_state_deviation"])


# ----------------------------------------------------------------------
# Process-pool scale-out -> merged into BENCH_sim.json
# ----------------------------------------------------------------------
def collect_scale_out_stats(
    molecule: str = "H2O",
    bond_lengths: tuple[float, ...] = (0.85, 0.9587, 1.05, 1.15),
    trajectories: int = 512,
    trajectory_molecule: str = "LiH",
    ratio: float = 0.3,
    seed: int = 31,
) -> dict:
    """Process-pool vs. threaded scale-out timings (ISSUE-9).

    Two rows under the ``scale_out`` key of ``BENCH_sim.json``:

    * ``batch`` -- the multi-point ``molecule`` sweep through
      :func:`repro.core.pipeline.run_batch` under ``executor="thread"``
      vs. ``executor="process"`` (Hamiltonian tables in shared memory,
      compile work GIL-free).  Chemistry is pre-warmed in the parent so
      both timings measure the compile pipeline, not integrals.
    * ``trajectory`` -- a K=``trajectories`` noisy estimate on the
      ratio-compressed ``trajectory_molecule`` circuit, serial vs.
      process pool: the per-block spawned seeds must make the two
      bit-identical (the determinism half of the acceptance gate).
    """
    import os

    from repro.core import PipelineConfig, clear_compile_cache, run_batch
    from repro.sim.noise import DepolarizingNoiseModel
    from repro.sim.trajectory import trajectory_estimate

    configs = [
        PipelineConfig(molecule=molecule, bond_length=bond)
        for bond in bond_lengths
    ]
    for config in configs:  # pre-warm chemistry out of the timed region
        build_molecule_hamiltonian(config.molecule, config.bond_length)

    def timed_batch(executor: str) -> tuple[float, list]:
        clear_compile_cache()  # both executors start compile-cold
        start = time.perf_counter()
        results = run_batch(configs, executor=executor, workers="auto")
        return time.perf_counter() - start, results

    thread_seconds, thread_results = timed_batch("thread")
    process_seconds, process_results = timed_batch("process")
    batch_identical = [t.to_dict() for t in thread_results] == [
        p.to_dict() for p in process_results
    ]

    problem = build_molecule_hamiltonian(trajectory_molecule)
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, ratio).program
    circuit = synthesize_program_chain(
        compressed,
        np.random.default_rng(seed).normal(0.0, 0.05, compressed.num_parameters),
    )
    noise = DepolarizingNoiseModel(two_qubit_error=1e-4)

    def estimate(executor: str) -> tuple[float, object]:
        start = time.perf_counter()
        result = trajectory_estimate(
            circuit,
            problem.hamiltonian,
            noise,
            trajectories=trajectories,
            seed=seed,
            executor=executor,
            workers="auto",
        )
        return time.perf_counter() - start, result

    serial_seconds, serial_estimate = estimate("serial")
    trajectory_seconds, process_estimate = estimate("process")
    bit_identical = (
        serial_estimate.value == process_estimate.value
        and serial_estimate.standard_error == process_estimate.standard_error
        and serial_estimate.error_events == process_estimate.error_events
    )

    return {
        "scale_out": {
            "cpu_count": os.cpu_count(),
            "batch": {
                "workload": (
                    f"{molecule} sweep, {len(configs)} bond points, "
                    "run_batch thread pool vs. process pool + shared memory"
                ),
                "configs": len(configs),
                "thread_seconds": round(thread_seconds, 6),
                "process_seconds": round(process_seconds, 6),
                "speedup_process_vs_thread": round(
                    thread_seconds / process_seconds, 2
                ),
                "results_identical": bool(batch_identical),
            },
            "trajectory": {
                "workload": (
                    f"{trajectory_molecule} ratio-{ratio} noisy estimate, "
                    f"K={trajectories}, serial vs. process pool"
                ),
                "num_qubits": compressed.num_qubits,
                "trajectories": trajectories,
                "serial_seconds": round(serial_seconds, 6),
                "process_seconds": round(trajectory_seconds, 6),
                "serial_energy": serial_estimate.value,
                "process_energy": process_estimate.value,
                "bit_identical_vs_serial": bool(bit_identical),
            },
        }
    }


def test_scale_out_benchmark_and_artifact():
    """ISSUE-9 acceptance: process-pool ``run_batch`` beats the threaded
    pool on the multi-point H2O sweep and the K=512 trajectory estimate
    is bit-identical across serial and process executors; the
    ``scale_out`` row is merged into ``BENCH_sim.json``.

    ``BENCH_SCALE_OUT_MIN_SPEEDUP`` relaxes the wall-clock gate on
    shared CI runners (like the fusion/cache gates); the speedup assert
    is skipped entirely on single-core hosts, where a process pool
    cannot win by construction -- determinism is asserted everywhere.
    ``BENCH_SCALE_OUT_TRAJECTORIES`` shrinks K where minutes matter.
    """
    import os

    minimum = float(os.environ.get("BENCH_SCALE_OUT_MIN_SPEEDUP", "1.5"))
    trajectories = int(os.environ.get("BENCH_SCALE_OUT_TRAJECTORIES", "512"))
    stats = collect_scale_out_stats(trajectories=trajectories)
    merged = json.loads(BENCH_SIM_PATH.read_text()) if BENCH_SIM_PATH.exists() else {}
    merged.update(stats)
    path = write_bench_sim_artifact(merged)
    print()
    print(json.dumps(stats, indent=2, sort_keys=True))
    print(f"wrote {path}")
    row = stats["scale_out"]
    assert row["batch"]["results_identical"]
    assert row["trajectory"]["bit_identical_vs_serial"]
    if (os.cpu_count() or 1) >= 2:
        assert row["batch"]["speedup_process_vs_thread"] >= minimum


# ----------------------------------------------------------------------
# Compiler-optimization comparison -> BENCH_compiler.json
# ----------------------------------------------------------------------
def collect_compiler_optimization_stats(
    molecules: tuple[str, ...] = TABLE2_MOLECULES, ratio: float = 0.3
) -> dict:
    """Adjacency vs. commutation cancellation and scheduled depth per molecule.

    For each Table II molecule: chain-synthesize and Merge-to-Root-compile
    the ratio-compressed UCCSD ansatz on XTree17Q, then record the CNOT
    count after the adjacency-only and the commutation-aware peephole
    passes (on the SWAP-decomposed physical circuit) plus the MtR
    circuit's ASAP-scheduled depth and critical-path duration.
    """
    per_molecule: dict[str, dict] = {}
    for molecule in molecules:
        problem = build_molecule_hamiltonian(molecule)
        program = build_uccsd_program(problem).program
        compressed = compress_ansatz(program, problem.hamiltonian, ratio).program
        chain = synthesize_program_chain(
            compressed, [0.0] * compressed.num_parameters
        )
        compiled = MergeToRootCompiler(xtree(17)).compile(compressed)
        physical = compiled.circuit.decompose_swaps()
        schedule = schedule_report(compiled.circuit)
        per_molecule[molecule] = {
            "num_qubits": compressed.num_qubits,
            "chain_cnots": chain.num_cnots(),
            "chain_cnots_adjacency": cancel_gates(chain).num_cnots(),
            "chain_cnots_commute": cancel_gates(chain, commute=True).num_cnots(),
            "mtr_cnots": physical.num_cnots(),
            "mtr_cnots_adjacency": cancel_gates(physical).num_cnots(),
            "mtr_cnots_commute": cancel_gates(physical, commute=True).num_cnots(),
            "mtr_scheduled_depth": schedule.scheduled_depth,
            "mtr_duration_ns": schedule.duration_ns,
        }
    strict_wins = sorted(
        molecule
        for molecule, row in per_molecule.items()
        if row["mtr_cnots_commute"] < row["mtr_cnots_adjacency"]
        or row["chain_cnots_commute"] < row["chain_cnots_adjacency"]
    )
    return {
        "workload": (
            f"Table II molecules, ratio-{ratio} compressed UCCSD on XTree17Q"
        ),
        "ratio": ratio,
        "device": "XTree17Q",
        "molecules": per_molecule,
        "commute_strict_win_molecules": strict_wins,
    }


def write_bench_compiler_artifact(stats: dict, path: Path = BENCH_COMPILER_PATH) -> Path:
    path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    return path


def test_commutation_cancellation_dominates_adjacency():
    """ISSUE-4 acceptance: the commutation-aware pass removes at least as
    many CNOTs as the adjacency pass on every Table II molecule, and
    strictly more on at least one; writes ``BENCH_compiler.json``.

    ``BENCH_COMPILER_MOLECULES`` restricts the sweep (comma-separated)
    where wall-clock matters; the default covers all nine molecules.
    """
    import os

    override = os.environ.get("BENCH_COMPILER_MOLECULES")
    molecules = tuple(override.split(",")) if override else TABLE2_MOLECULES
    stats = collect_compiler_optimization_stats(molecules)
    path = write_bench_compiler_artifact(stats)
    print()
    print(json.dumps(stats, indent=2, sort_keys=True))
    print(f"wrote {path}")
    for molecule, row in stats["molecules"].items():
        assert row["chain_cnots_commute"] <= row["chain_cnots_adjacency"], molecule
        assert row["mtr_cnots_commute"] <= row["mtr_cnots_adjacency"], molecule
        assert row["mtr_scheduled_depth"] > 0, molecule
    assert stats["commute_strict_win_molecules"], "no molecule improved"


# ----------------------------------------------------------------------
# Noisy-backend comparison -> BENCH_noise.json
# ----------------------------------------------------------------------
def collect_noise_backend_stats(
    trajectories: int = 512,
    seed: int = 29,
    ratio: float = 0.3,
    cnot_error: float = 1e-4,
    bh3_trajectories: int = 128,
    bh3_ratio: float = 0.1,
) -> dict:
    """Density-matrix vs. Pauli-trajectory noisy energies (ISSUE-5).

    On LiH and NaH (where the exact O(4^n) density matrix still runs)
    the trajectory engine must agree within 3 standard errors at
    ``trajectories`` samples, and the artifact records the wall-clock
    ratio.  BH3 (14 qubits) exceeds the density-matrix simulator's
    12-qubit cap, so its noisy bond point -- noiseless-optimized
    parameters evaluated under the paper's depolarizing channel -- is
    recorded by the trajectory engine alone: the first noisy >12-qubit
    number this repo can produce.
    """
    from repro.sim.noise import DepolarizingNoiseModel
    from repro.vqe import VQE
    from repro.vqe.energy import DensityMatrixEnergy, TrajectoryEnergy

    noise = DepolarizingNoiseModel(two_qubit_error=cnot_error)
    per_molecule: dict[str, dict] = {}
    for molecule in ("LiH", "NaH"):
        problem = build_molecule_hamiltonian(molecule)
        program = build_uccsd_program(problem).program
        compressed = compress_ansatz(program, problem.hamiltonian, ratio).program
        theta = np.random.default_rng(seed).normal(0.0, 0.05, compressed.num_parameters)
        dm = DensityMatrixEnergy(compressed, problem.hamiltonian, noise)
        start = time.perf_counter()
        dm_energy = dm(theta)
        dm_seconds = time.perf_counter() - start
        trajectory = TrajectoryEnergy(
            compressed, problem.hamiltonian, noise,
            trajectories=trajectories, seed=seed,
        )
        start = time.perf_counter()
        trajectory_energy = trajectory(theta)
        trajectory_seconds = time.perf_counter() - start
        standard_error = trajectory.last_standard_error
        per_molecule[molecule] = {
            "num_qubits": compressed.num_qubits,
            "num_parameters": compressed.num_parameters,
            "chain_cnots": compressed.cnot_count(),
            "density_matrix_energy": dm_energy,
            "density_matrix_seconds": round(dm_seconds, 6),
            "trajectory_energy": trajectory_energy,
            "trajectory_standard_error": standard_error,
            "trajectory_error_events": trajectory.last_error_events,
            "trajectory_seconds": round(trajectory_seconds, 6),
            "speedup_trajectory_vs_density_matrix": round(
                dm_seconds / trajectory_seconds, 2
            ),
            "sigmas_off": round(
                abs(trajectory_energy - dm_energy) / standard_error, 3
            ),
            "agrees_within_3_sigma": bool(
                abs(trajectory_energy - dm_energy) <= 3.0 * standard_error
            ),
        }

    # BH3: 14 qubits -- impossible on the density-matrix backend.  The
    # bond point is the noiseless VQE optimum (statevector + adjoint
    # gradients) re-evaluated under the depolarizing channel.
    problem = build_molecule_hamiltonian("BH3")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, bh3_ratio).program
    start = time.perf_counter()
    noiseless = VQE(
        compressed, problem.hamiltonian, gradient="adjoint", max_iterations=30
    ).run()
    optimize_seconds = time.perf_counter() - start
    trajectory = TrajectoryEnergy(
        compressed, problem.hamiltonian, noise,
        trajectories=bh3_trajectories, seed=seed,
    )
    start = time.perf_counter()
    noisy_energy = trajectory(noiseless.parameters)
    trajectory_seconds = time.perf_counter() - start
    bh3 = {
        "num_qubits": compressed.num_qubits,
        "num_parameters": compressed.num_parameters,
        "chain_cnots": compressed.cnot_count(),
        "bond_length": float(problem.molecule.bond_length),
        "trajectories": bh3_trajectories,
        "noiseless_energy": float(noiseless.energy),
        "noiseless_optimize_seconds": round(optimize_seconds, 6),
        "trajectory_energy": noisy_energy,
        "trajectory_standard_error": trajectory.last_standard_error,
        "trajectory_error_events": trajectory.last_error_events,
        "trajectory_seconds": round(trajectory_seconds, 6),
        "noise_penalty": noisy_energy - float(noiseless.energy),
        "density_matrix": (
            "impossible: O(4^n) propagation, simulator capped at 12 qubits"
        ),
    }

    return {
        "workload": (
            f"noisy energy, ratio-{ratio} compressed UCCSD, depolarizing "
            f"CNOT error {cnot_error}, {trajectories} trajectories"
        ),
        "cnot_error": cnot_error,
        "trajectories": trajectories,
        "seed": seed,
        "molecules": per_molecule,
        "BH3": bh3,
    }


def write_bench_noise_artifact(stats: dict, path: Path = BENCH_NOISE_PATH) -> Path:
    path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    return path


def test_noise_backend_agreement_and_artifact():
    """ISSUE-5 acceptance: the trajectory engine matches the exact
    density matrix within 3 standard errors at K=512 on LiH (and NaH),
    and completes a noisy 14-qubit BH3 bond point the density-matrix
    backend cannot; writes ``BENCH_noise.json``.

    ``BENCH_NOISE_TRAJECTORIES`` shrinks the sample count where
    wall-clock matters (CI); the local default stays at the K=512
    acceptance bar.
    """
    import os

    trajectories = int(os.environ.get("BENCH_NOISE_TRAJECTORIES", "512"))
    stats = collect_noise_backend_stats(trajectories=trajectories)
    path = write_bench_noise_artifact(stats)
    print()
    print(json.dumps(stats, indent=2, sort_keys=True))
    print(f"wrote {path}")
    for molecule, row in stats["molecules"].items():
        assert row["trajectory_standard_error"] > 0.0, molecule
        assert row["agrees_within_3_sigma"], (molecule, row["sigmas_off"])
    bh3 = stats["BH3"]
    assert bh3["num_qubits"] == 14
    assert np.isfinite(bh3["trajectory_energy"])
    assert bh3["trajectory_standard_error"] > 0.0
    assert bh3["trajectory_error_events"] > 0


def test_hamiltonian_construction_speed(benchmark):
    """Full substrate pipeline timing (integrals + SCF + JW), uncached."""
    from repro.chem.hamiltonian import _build_cached

    def build():
        _build_cached.cache_clear()
        return _build_cached("LiH", 15950)

    benchmark.pedantic(build, iterations=1, rounds=3)


if __name__ == "__main__":
    sim_rows = collect_sim_engine_timings()
    sim_rows.update(collect_fusion_cache_timings())
    sim_rows.update(collect_scale_out_stats())
    artifact = write_bench_sim_artifact(sim_rows)
    print(json.dumps(json.loads(artifact.read_text()), indent=2, sort_keys=True))
    print(f"wrote {artifact}")
    compiler_artifact = write_bench_compiler_artifact(
        collect_compiler_optimization_stats()
    )
    print(json.dumps(json.loads(compiler_artifact.read_text()), indent=2, sort_keys=True))
    print(f"wrote {compiler_artifact}")
    noise_artifact = write_bench_noise_artifact(collect_noise_backend_stats())
    print(json.dumps(json.loads(noise_artifact.read_text()), indent=2, sort_keys=True))
    print(f"wrote {noise_artifact}")
