"""Micro-benchmarks of the performance-critical primitives.

These are classic pytest-benchmark timings (many rounds) for the kernels
the experiment harness leans on: Pauli algebra, statevector evolution,
grouped expectation, Merge-to-Root compilation and SABRE routing.
"""

import numpy as np

from repro.ansatz import build_uccsd_program
from repro.chem import build_molecule_hamiltonian
from repro.compiler import MergeToRootCompiler, SabreRouter, synthesize_program_chain
from repro.core import compress_ansatz
from repro.hardware import xtree
from repro.pauli import PauliString
from repro.sim import ExpectationEngine, basis_state
from repro.sim.pauli_evolution import evolve_pauli_sequence


def test_pauli_compose_speed(benchmark):
    a = PauliString.from_label("XIYZXZIYXIYZXZIY")
    b = PauliString.from_label("ZZXYIIXYZZXYIIXY")
    benchmark(a.compose, b)


def test_ansatz_evolution_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    program = build_uccsd_program(problem).program
    terms = program.bound_terms(np.full(program.num_parameters, 0.05))
    state = basis_state(program.num_qubits, problem.hartree_fock_state_index())
    benchmark(evolve_pauli_sequence, terms, state)


def test_expectation_engine_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    engine = ExpectationEngine(problem.hamiltonian)
    state = basis_state(problem.num_qubits, problem.hartree_fock_state_index())
    benchmark(engine.value, state)


def test_merge_to_root_compile_speed(benchmark):
    problem = build_molecule_hamiltonian("H2O")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.5).program
    compiler = MergeToRootCompiler(xtree(17))
    benchmark(compiler.compile, compressed)


def test_sabre_routing_speed(benchmark):
    problem = build_molecule_hamiltonian("NaH")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.5).program
    chain = synthesize_program_chain(compressed, [0.0] * compressed.num_parameters)
    router = SabreRouter(xtree(17))
    benchmark.pedantic(router.run, args=(chain,), iterations=1, rounds=3)


def test_hamiltonian_construction_speed(benchmark):
    """Full substrate pipeline timing (integrals + SCF + JW), uncached."""
    from repro.chem.hamiltonian import _build_cached

    def build():
        _build_cached.cache_clear()
        return _build_cached("LiH", 15950)

    benchmark.pedantic(build, iterations=1, rounds=3)
