"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. importance decay base (Algorithm 1 fixes base 2);
2. hierarchical vs trivial initial layout for Merge-to-Root;
3. importance ordering vs original ordering of the compressed ansatz;
4. X-Tree size scaling.
"""

from conftest import full_scope

from repro.ansatz import build_uccsd_program
from repro.bench.ablation import (
    decay_base_ablation,
    layout_ablation,
    ordering_ablation,
    tree_size_sweep,
)
from repro.bench.reporting import format_table
from repro.chem import build_molecule_hamiltonian
from repro.core import compress_ansatz


def test_decay_base(benchmark):
    results = benchmark.pedantic(
        decay_base_ablation, args=("LiH",), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["decay base", "|E - E0| (Ha)", "iterations"],
            [[r.decay_base, r.energy_error, r.iterations] for r in results],
            title="Importance decay-base ablation (LiH @ 50%)",
        )
    )
    # Every base must keep the 50% ansatz accurate to a few mHa on LiH.
    assert all(r.energy_error < 5e-3 for r in results)


def test_initial_layout(benchmark):
    molecule = "H2O" if full_scope() else "NaH"
    results = benchmark.pedantic(
        layout_ablation, args=(molecule,), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["ratio", "hierarchical swaps", "trivial swaps"],
            [[r.ratio, r.hierarchical_swaps, r.trivial_swaps] for r in results],
            title=f"Initial-layout ablation ({molecule}, MtR on XTree17Q)",
        )
    )
    # The hierarchical layout never loses in total.
    total_hier = sum(r.hierarchical_swaps for r in results)
    total_trivial = sum(r.trivial_swaps for r in results)
    assert total_hier <= total_trivial


def test_importance_ordering(benchmark):
    results = benchmark.pedantic(
        ordering_ablation, args=("NaH",), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["ratio", "importance-ordered swaps", "original-order swaps"],
            [
                [r.ratio, r.importance_ordered_swaps, r.original_ordered_swaps]
                for r in results
            ],
            title="Ansatz-ordering ablation (NaH, MtR on XTree17Q)",
        )
    )


def test_tree_size_scaling(benchmark):
    problem = build_molecule_hamiltonian("NaH")
    program = build_uccsd_program(problem).program
    compressed = compress_ansatz(program, problem.hamiltonian, 0.9).program
    results = benchmark.pedantic(
        tree_size_sweep, args=(compressed,), iterations=1, rounds=1
    )
    print()
    print(
        format_table(
            ["XTree size", "MtR swaps"],
            sorted(results.items()),
            title="Architecture-size ablation (NaH @ 90%)",
        )
    )
