"""Table I regeneration: benchmark molecules and original UCCSD cost.

Run with ``pytest benchmarks/bench_table1.py --benchmark-only -s`` to see
the side-by-side comparison with the published table.
"""

from conftest import full_scope

from repro.bench import TABLE1_PAPER, format_table, table1_rows


def _molecules() -> list[str]:
    if full_scope():
        return list(TABLE1_PAPER)
    return ["H2", "LiH", "NaH", "HF", "BeH2", "H2O"]


def test_table1(benchmark):
    molecules = _molecules()
    rows = benchmark.pedantic(table1_rows, args=(molecules,), iterations=1, rounds=1)
    printable = []
    for row in rows:
        paper = TABLE1_PAPER[row.molecule]
        printable.append(
            [
                row.molecule,
                f"{row.num_qubits}/{paper[0]}",
                f"{row.num_pauli}/{paper[1]}",
                f"{row.num_parameters}/{paper[2]}",
                f"{row.num_gates}/{paper[3]}",
                f"{row.num_cnots}/{paper[4]}",
            ]
        )
    print()
    print(
        format_table(
            ["molecule", "qubits", "#Pauli", "#params", "#gates", "#CNOTs"],
            printable,
            title="Table I (ours/paper)",
        )
    )
    for row in rows:
        paper = TABLE1_PAPER[row.molecule]
        assert row.num_qubits == paper[0]
        assert row.num_pauli == paper[1]
        assert row.num_parameters == paper[2]
        assert row.num_cnots == paper[4]
        # Total gates match within the X-gate counting convention (<= 8).
        assert abs(row.num_gates - paper[3]) <= 8
