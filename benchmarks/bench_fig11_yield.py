"""Figure 11 regeneration: fabrication yield, XTree17Q vs Grid17Q.

Shape targets from the paper: yield decreases with worse fabrication
precision, and the 16-connection X-Tree beats the 24-connection grid by
a factor in the "about 8x" range.
"""

from repro.bench import fig11_data, format_table
from repro.bench.fig11 import mean_advantage


def test_fig11_yield(benchmark, scope_trials):
    comparisons = benchmark.pedantic(
        fig11_data, kwargs={"trials": scope_trials}, iterations=1, rounds=1
    )
    rows = [
        [c.precision, c.xtree_yield, c.grid_yield, c.advantage] for c in comparisons
    ]
    print()
    print(
        format_table(
            ["precision (GHz)", "XTree17Q yield", "Grid17Q yield", "XTree/Grid"],
            rows,
            title="Figure 11 (paper: ~8x XTree advantage)",
        )
    )
    print(f"geometric-mean advantage: {mean_advantage(comparisons):.2f}x")

    # Yield decreases with worse precision for the X-Tree.
    xtree_rates = [c.xtree_yield for c in comparisons]
    assert xtree_rates[0] > xtree_rates[-1]
    # The X-Tree dominates the grid wherever either is measurable.
    for comparison in comparisons:
        if comparison.grid_yield > 0:
            assert comparison.xtree_yield >= comparison.grid_yield
    advantage = mean_advantage(comparisons)
    assert advantage > 2.0, f"expected a clear X-Tree advantage, got {advantage:.2f}x"
